// Package cm5 is the public API of the CM-5 communication-scheduling
// library: a discrete-event model of the Connection Machine CM-5's data
// and control networks together with the complete-exchange, broadcast,
// and irregular-pattern scheduling algorithms of Ponnusamy, Thakur,
// Choudhary and Fox, "Scheduling Regular and Irregular Communication
// Patterns on the CM-5" (SC 1992).
//
// The API has three nouns. An Algorithm is a typed identifier resolved
// through the central registry (LookupAlgorithm, Algorithms,
// AlgorithmsOf); it carries a Kind — exchange, broadcast, irregular, or
// collective — and a doc string. A Job says what to run: an algorithm
// plus a machine size and message size (NewJob), a communication
// pattern (PatternJob), or an explicit schedule (ScheduleJob), refined
// by functional options such as WithConfig, WithSeed, WithAsync,
// WithObserver, WithTopology and WithTrace. Run executes a Job and
// returns a Result: the simulated makespan plus schedule statistics
// (steps, messages, bytes, max fan-in) and network metrics (per-step
// completion times, per-level and per-link utilization).
//
// The data network is topology-pluggable: by default every Job runs
// over the calibrated CM-5 fat tree, and WithTopology swaps in any
// Topology — a named family from NewTopology (fat-tree, tapered,
// torus2d, torus3d, hypercube, dragonfly; see Topologies) or a custom
// implementation of the interface. The fat tree built by
// NewTopology("fat-tree", n) reproduces the default machine bit for
// bit.
//
// Quick start:
//
//	pex, _ := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 32, 1024))
//	bex, _ := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("BEX"), 32, 1024))
//	fmt.Printf("PEX %.3f ms  BEX %.3f ms\n", pex.Elapsed.Millis(), bex.Elapsed.Millis())
//
// For irregular patterns, build a Pattern (bytes from processor i to j)
// and run it through one of the schedulers:
//
//	p := cm5.SyntheticPattern(32, 0.25, 256, 1)
//	gs, _ := cm5.Run(cm5.PatternJob(cm5.MustAlgorithm("GS"), p))
//	fmt.Printf("GS: %d steps, %.3f ms\n", gs.Steps, gs.Elapsed.Millis())
//
// Plan builds the explicit Schedule a job would run without executing
// it — the registry's planners are the paper's Tables 1-4 and 7-10.
//
// Node-level programming (the CMMD model: synchronous Send/Recv,
// barriers, control-network collectives) is available through
// NewMachine. The collectives library (Collectives, CollectivePattern,
// GhostExchange and the Node methods Scatter, Gather, AllGather,
// ReduceData, AllReduceData, Transpose, CShift, GhostExchange) provides
// every collective both as a registered algorithm (KindCollective) and
// as a schedulable traffic matrix. Workloads and WorkloadPattern expose
// the scenario catalogue the experiment harness sweeps.
//
// The pre-registry facade (CompleteExchange, Broadcast,
// ScheduleIrregular, RunSchedule, Shift, CrystalRouter) remains as thin
// deprecated wrappers over Run; see ARCHITECTURE.md for the migration
// table.
package cm5

import (
	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Duration is simulated time in nanoseconds. Use Seconds, Millis or
// Micros for conversions.
type Duration = sim.Time

// Config holds the machine timing constants; DefaultConfig returns the
// calibrated CM-5 model (20/10/5 MB/s fat-tree envelope, 88 us message
// latency, 20-byte packets, control-network collectives).
type Config = network.Config

// DefaultConfig returns the calibrated CM-5 constants.
func DefaultConfig() Config { return network.DefaultConfig() }

// Pattern is an irregular communication pattern: Pattern[i][j] bytes
// flow from processor i to processor j.
type Pattern = pattern.Matrix

// Schedule is an explicit communication schedule (steps of transfers).
type Schedule = sched.Schedule

// Machine is a simulated CM-5 partition programmable with node programs.
type Machine = cmmd.Machine

// Node is one simulated processing node inside a Machine program.
type Node = cmmd.Node

// NewMachine builds an n-node simulated partition (n a power of two).
func NewMachine(n int, cfg Config) (*Machine, error) { return cmmd.NewMachine(n, cfg) }

// NewPattern returns an empty n-processor pattern.
func NewPattern(n int) Pattern { return pattern.New(n) }

// SyntheticPattern generates a random pattern of the given density
// (fraction of processor pairs communicating) with fixed message size.
func SyntheticPattern(n int, density float64, bytesPerMsg int, seed int64) Pattern {
	return pattern.Synthetic(n, density, bytesPerMsg, seed)
}

// PaperPatternP returns the paper's Table 6 example pattern scaled to
// bytesPerMsg per message.
func PaperPatternP(bytesPerMsg int) Pattern { return pattern.PaperP(bytesPerMsg) }

// CompleteExchange runs the named all-to-all algorithm (LEX, PEX, REX,
// BEX) on an n-node machine with bytesPerPair per processor pair and
// returns the simulated time.
//
// Deprecated: Use Run with a registry Algorithm, which also returns
// the schedule statistics and network metrics:
//
//	res, err := cm5.Run(cm5.NewJob(alg, n, bytesPerPair, cm5.WithConfig(cfg)))
func CompleteExchange(alg string, n, bytesPerPair int, cfg Config) (Duration, error) {
	a, err := kindAlgorithm(alg, KindExchange)
	if err != nil {
		return 0, err
	}
	return runElapsed(NewJob(a, n, bytesPerPair, WithConfig(cfg)))
}

// Broadcast runs the named one-to-all algorithm (LIB, REB, SYS) from
// root and returns the simulated time for all nodes to hold nbytes.
//
// Deprecated: Use Run with a registry Algorithm and WithRoot.
func Broadcast(alg string, n, root, nbytes int, cfg Config) (Duration, error) {
	a, err := kindAlgorithm(alg, KindBroadcast)
	if err != nil {
		return 0, err
	}
	return runElapsed(NewJob(a, n, nbytes, WithRoot(root), WithConfig(cfg)))
}

// ScheduleIrregular builds a schedule for an irregular pattern with the
// named scheduler (LS, PS, BS, GS).
//
// Deprecated: Use Plan with a registry Algorithm:
//
//	s, err := cm5.Plan(cm5.PatternJob(alg, p))
func ScheduleIrregular(alg string, p Pattern) (*Schedule, error) {
	a, err := kindAlgorithm(alg, KindIrregular)
	if err != nil {
		return nil, err
	}
	return Plan(PatternJob(a, p))
}

// RunSchedule executes a schedule on a fresh machine and returns the
// simulated completion time of the slowest node.
//
// Deprecated: Use Run with ScheduleJob, which also returns the
// schedule statistics and network metrics.
func RunSchedule(s *Schedule, cfg Config) (Duration, error) {
	return runElapsed(ScheduleJob(s, WithConfig(cfg)))
}

// RunScheduleAsync executes a schedule with buffered (non-blocking)
// sends: the what-if of the paper's Section 3.1 (real CMMD 1.x was
// synchronous-only).
//
// Deprecated: Use Run with ScheduleJob and WithAsync(true).
func RunScheduleAsync(s *Schedule, cfg Config) (Duration, error) {
	return runElapsed(ScheduleJob(s, WithConfig(cfg), WithAsync(true)))
}

// Shift runs the circular-shift regular pattern: every processor sends
// nbytes to (rank + offset) mod n, two-phase ordered so it completes in
// two parallel waves under synchronous sends.
//
// Deprecated: Use Run with the SHIFT Algorithm and WithOffset.
func Shift(n, offset, nbytes int, cfg Config) (Duration, error) {
	return runElapsed(NewJob(MustAlgorithm("SHIFT"), n, nbytes,
		WithOffset(offset), WithConfig(cfg)))
}

// CrystalRouter runs an irregular pattern through the hypercube
// store-and-forward crystal router (Fox et al. 1988) — the baseline the
// paper cites — instead of a direct schedule.
//
// Deprecated: Use Run with the CRYSTAL Algorithm and PatternJob.
func CrystalRouter(p Pattern, cfg Config) (Duration, error) {
	return runElapsed(PatternJob(MustAlgorithm("CRYSTAL"), p, WithConfig(cfg)))
}

// ExchangeAlgorithms lists the complete-exchange algorithm names — a
// registry query for the non-auxiliary KindExchange entries.
func ExchangeAlgorithms() []string { return sched.FamilyNames(KindExchange) }

// BroadcastAlgorithms lists the broadcast algorithm names.
func BroadcastAlgorithms() []string { return sched.FamilyNames(KindBroadcast) }

// IrregularAlgorithms lists the irregular scheduler names.
func IrregularAlgorithms() []string { return sched.FamilyNames(KindIrregular) }
