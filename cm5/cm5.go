// Package cm5 is the public API of the CM-5 communication-scheduling
// library: a discrete-event model of the Connection Machine CM-5's data
// and control networks together with the complete-exchange, broadcast,
// and irregular-pattern scheduling algorithms of Ponnusamy, Thakur,
// Choudhary and Fox, "Scheduling Regular and Irregular Communication
// Patterns on the CM-5" (SC 1992).
//
// Quick start:
//
//	cfg := cm5.DefaultConfig()
//	pex, _ := cm5.CompleteExchange("PEX", 32, 1024, cfg)
//	bex, _ := cm5.CompleteExchange("BEX", 32, 1024, cfg)
//	fmt.Printf("PEX %.3f ms  BEX %.3f ms\n", pex.Millis(), bex.Millis())
//
// For irregular patterns, build a Pattern (bytes from processor i to j),
// schedule it, and run:
//
//	p := cm5.SyntheticPattern(32, 0.25, 256, 1)
//	s, _ := cm5.ScheduleIrregular("GS", p)
//	d, _ := cm5.RunSchedule(s, cfg)
//
// Node-level programming (the CMMD model: synchronous Send/Recv,
// barriers, control-network collectives) is available through NewMachine.
//
// The collectives library (Collectives, RunCollective, CollectivePattern,
// GhostExchange and the Node methods Scatter, Gather, AllGather,
// ReduceData, AllReduceData, Transpose, CShift, GhostExchange) provides
// every collective in two interchangeable forms: a CMMD node program and
// a schedulable traffic matrix. Workloads and WorkloadPattern expose the
// scenario catalogue (transpose, butterfly, hotspot, permutation,
// stencils, bisection) the experiment harness sweeps.
package cm5

import (
	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Duration is simulated time in nanoseconds. Use Seconds, Millis or
// Micros for conversions.
type Duration = sim.Time

// Config holds the machine timing constants; DefaultConfig returns the
// calibrated CM-5 model (20/10/5 MB/s fat-tree envelope, 88 us message
// latency, 20-byte packets, control-network collectives).
type Config = network.Config

// DefaultConfig returns the calibrated CM-5 constants.
func DefaultConfig() Config { return network.DefaultConfig() }

// Pattern is an irregular communication pattern: Pattern[i][j] bytes
// flow from processor i to processor j.
type Pattern = pattern.Matrix

// Schedule is an explicit communication schedule (steps of transfers).
type Schedule = sched.Schedule

// Machine is a simulated CM-5 partition programmable with node programs.
type Machine = cmmd.Machine

// Node is one simulated processing node inside a Machine program.
type Node = cmmd.Node

// NewMachine builds an n-node simulated partition (n a power of two).
func NewMachine(n int, cfg Config) (*Machine, error) { return cmmd.NewMachine(n, cfg) }

// NewPattern returns an empty n-processor pattern.
func NewPattern(n int) Pattern { return pattern.New(n) }

// SyntheticPattern generates a random pattern of the given density
// (fraction of processor pairs communicating) with fixed message size.
func SyntheticPattern(n int, density float64, bytesPerMsg int, seed int64) Pattern {
	return pattern.Synthetic(n, density, bytesPerMsg, seed)
}

// PaperPatternP returns the paper's Table 6 example pattern scaled to
// bytesPerMsg per message.
func PaperPatternP(bytesPerMsg int) Pattern { return pattern.PaperP(bytesPerMsg) }

// CompleteExchange runs the named all-to-all algorithm (LEX, PEX, REX,
// BEX) on an n-node machine with bytesPerPair per processor pair and
// returns the simulated time.
func CompleteExchange(alg string, n, bytesPerPair int, cfg Config) (Duration, error) {
	return sched.Exchange(alg, n, bytesPerPair, cfg)
}

// Broadcast runs the named one-to-all algorithm (LIB, REB, SYS) from
// root and returns the simulated time for all nodes to hold nbytes.
func Broadcast(alg string, n, root, nbytes int, cfg Config) (Duration, error) {
	return sched.Broadcast(alg, n, root, nbytes, cfg)
}

// ScheduleIrregular builds a schedule for an irregular pattern with the
// named scheduler (LS, PS, BS, GS).
func ScheduleIrregular(alg string, p Pattern) (*Schedule, error) {
	return sched.Irregular(alg, p)
}

// RunSchedule executes a schedule on a fresh machine and returns the
// simulated completion time of the slowest node.
func RunSchedule(s *Schedule, cfg Config) (Duration, error) {
	return sched.Run(s, cfg)
}

// Shift runs the circular-shift regular pattern: every processor sends
// nbytes to (rank + offset) mod n, two-phase ordered so it completes in
// two parallel waves under synchronous sends.
func Shift(n, offset, nbytes int, cfg Config) (Duration, error) {
	return sched.Run(sched.Shift(n, offset, nbytes), cfg)
}

// CrystalRouter runs an irregular pattern through the hypercube
// store-and-forward crystal router (Fox et al. 1988) — the baseline the
// paper cites — instead of a direct schedule.
func CrystalRouter(p Pattern, cfg Config) (Duration, error) {
	return sched.RunCrystalRouter(p, cfg)
}

// RunScheduleAsync executes a schedule with buffered (non-blocking)
// sends: the what-if of the paper's Section 3.1 (real CMMD 1.x was
// synchronous-only).
func RunScheduleAsync(s *Schedule, cfg Config) (Duration, error) {
	return sched.RunAsync(s, cfg)
}

// ExchangeAlgorithms lists the complete-exchange algorithm names.
func ExchangeAlgorithms() []string { return []string{"LEX", "PEX", "REX", "BEX"} }

// BroadcastAlgorithms lists the broadcast algorithm names.
func BroadcastAlgorithms() []string { return []string{"LIB", "REB", "SYS"} }

// IrregularAlgorithms lists the irregular scheduler names.
func IrregularAlgorithms() []string { return []string{"LS", "PS", "BS", "GS"} }
