package cm5

import (
	"repro/internal/network"
)

// FaultPlan is a versioned, deterministic list of fault events injected
// into a run at scheduled simulation times: link failures (with
// automatic reroute of in-flight flows), degraded link capacity,
// straggler nodes, and background cross-traffic. Attach one to a Job
// with WithFaults. Plans are plain data — they marshal to stable JSON,
// so they hash into content-addressed experiment cell specs — and a
// plan built from a (profile, topology, seed) triple is a pure function
// of those inputs.
type FaultPlan = network.FaultPlan

// FaultEvent is one scheduled fault of a FaultPlan.
type FaultEvent = network.FaultEvent

// FaultKind names the kind of one FaultEvent.
type FaultKind = network.FaultKind

// The fault kinds a FaultPlan may schedule.
const (
	// FaultLinkDown permanently removes an interior link; in-flight and
	// future flows reroute over a fault-free detour.
	FaultLinkDown = network.FaultLinkDown
	// FaultDegrade multiplies a link's capacity by Factor in (0, 1].
	FaultDegrade = network.FaultDegrade
	// FaultStraggler multiplies a node's local time costs (send/recv
	// overheads, compute, memory copies) by Factor >= 1.
	FaultStraggler = network.FaultStraggler
	// FaultBackground injects a burst of seed-deterministic cross-traffic
	// flows that compete with the run for link bandwidth.
	FaultBackground = network.FaultBackground
)

// FaultStats summarizes what a fault plan did to a run; see
// Result.Faults.
type FaultStats = network.FaultStats

// ErrUnknownFaultProfile is wrapped by NewFaultPlan on a profile-name
// miss; the error text lists the known names.
var ErrUnknownFaultProfile = network.ErrUnknownFaultProfile

// FaultProfiles returns the named fault profiles NewFaultPlan builds,
// in canonical order: healthy, link-down, degrade, straggler,
// crosstraffic.
func FaultProfiles() []string { return network.FaultProfiles() }

// FaultProfileDoc returns the one-line description of a named fault
// profile, or "" for an unknown name.
func FaultProfileDoc(name string) string { return network.FaultProfileDoc(name) }

// NewFaultPlan builds the named fault profile for the topology, scaled
// to its size and seeded deterministically: the same (profile,
// topology, seed) triple always yields the same plan. The "healthy"
// profile returns a plan with no events — running under it is
// byte-identical to running with no plan at all. Pass the same
// Topology the job will run on (NewTopology, or nil-topology jobs use
// NewTopology("fat-tree", n)); the plan is validated against it.
func NewFaultPlan(profile string, t Topology, seed int64) (*FaultPlan, error) {
	return network.NewFaultPlan(profile, t, seed)
}
