package cm5_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/cm5"
)

// The deprecated facade must be a thin veneer: every wrapper returns
// exactly what the equivalent Run(Job) call returns, for every
// registered algorithm of its kind, at N=16.

const compatN = 16

func TestCompatCompleteExchange(t *testing.T) {
	cfg := cm5.DefaultConfig()
	algs := cm5.ExchangeAlgorithms()
	if want := []string{"LEX", "PEX", "REX", "BEX"}; !reflect.DeepEqual(algs, want) {
		t.Fatalf("ExchangeAlgorithms() = %v, want %v", algs, want)
	}
	for _, name := range algs {
		old, err := cm5.CompleteExchange(name, compatN, 512, cfg)
		if err != nil {
			t.Fatalf("CompleteExchange(%s): %v", name, err)
		}
		res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm(name), compatN, 512, cm5.WithConfig(cfg)))
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if old != res.Elapsed {
			t.Errorf("%s: wrapper %v != Run %v", name, old, res.Elapsed)
		}
	}
}

func TestCompatBroadcast(t *testing.T) {
	cfg := cm5.DefaultConfig()
	algs := cm5.BroadcastAlgorithms()
	if want := []string{"LIB", "REB", "SYS"}; !reflect.DeepEqual(algs, want) {
		t.Fatalf("BroadcastAlgorithms() = %v, want %v", algs, want)
	}
	for _, name := range algs {
		for _, root := range []int{0, 5} {
			old, err := cm5.Broadcast(name, compatN, root, 2048, cfg)
			if err != nil {
				t.Fatalf("Broadcast(%s, root %d): %v", name, root, err)
			}
			res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm(name), compatN, 2048,
				cm5.WithRoot(root), cm5.WithConfig(cfg)))
			if err != nil {
				t.Fatalf("Run(%s, root %d): %v", name, root, err)
			}
			if old != res.Elapsed {
				t.Errorf("%s root %d: wrapper %v != Run %v", name, root, old, res.Elapsed)
			}
		}
	}
}

func TestCompatIrregular(t *testing.T) {
	cfg := cm5.DefaultConfig()
	algs := cm5.IrregularAlgorithms()
	if want := []string{"LS", "PS", "BS", "GS"}; !reflect.DeepEqual(algs, want) {
		t.Fatalf("IrregularAlgorithms() = %v, want %v", algs, want)
	}
	p := cm5.SyntheticPattern(compatN, 0.4, 256, 3)
	for _, name := range algs {
		s, err := cm5.ScheduleIrregular(name, p)
		if err != nil {
			t.Fatalf("ScheduleIrregular(%s): %v", name, err)
		}
		planned, err := cm5.Plan(cm5.PatternJob(cm5.MustAlgorithm(name), p))
		if err != nil {
			t.Fatalf("Plan(%s): %v", name, err)
		}
		if !reflect.DeepEqual(s, planned) {
			t.Errorf("%s: ScheduleIrregular and Plan disagree", name)
		}
		old, err := cm5.RunSchedule(s, cfg)
		if err != nil {
			t.Fatalf("RunSchedule(%s): %v", name, err)
		}
		res, err := cm5.Run(cm5.PatternJob(cm5.MustAlgorithm(name), p, cm5.WithConfig(cfg)))
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if old != res.Elapsed {
			t.Errorf("%s: RunSchedule %v != Run %v", name, old, res.Elapsed)
		}
		if res.Steps != s.NumSteps() || res.Messages != s.Messages() ||
			res.TotalBytes != s.TotalBytes() || res.MaxFanIn != s.MaxFanIn() {
			t.Errorf("%s: Result schedule stats disagree with the planned schedule", name)
		}
	}
}

func TestCompatRunScheduleAsync(t *testing.T) {
	cfg := cm5.DefaultConfig()
	s, err := cm5.Plan(cm5.NewJob(cm5.MustAlgorithm("LEX"), compatN, 256))
	if err != nil {
		t.Fatal(err)
	}
	old, err := cm5.RunScheduleAsync(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cm5.Run(cm5.ScheduleJob(s, cm5.WithConfig(cfg), cm5.WithAsync(true)))
	if err != nil {
		t.Fatal(err)
	}
	if old != res.Elapsed {
		t.Errorf("RunScheduleAsync %v != Run %v", old, res.Elapsed)
	}
	sync, err := cm5.Run(cm5.ScheduleJob(s, cm5.WithConfig(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed >= sync.Elapsed {
		t.Errorf("buffered LEX (%v) should beat synchronous LEX (%v)", res.Elapsed, sync.Elapsed)
	}
}

func TestCompatShift(t *testing.T) {
	cfg := cm5.DefaultConfig()
	for _, offset := range []int{1, 3, compatN - 1} {
		old, err := cm5.Shift(compatN, offset, 1024, cfg)
		if err != nil {
			t.Fatalf("Shift(offset %d): %v", offset, err)
		}
		res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("SHIFT"), compatN, 1024,
			cm5.WithOffset(offset), cm5.WithConfig(cfg)))
		if err != nil {
			t.Fatalf("Run(SHIFT, offset %d): %v", offset, err)
		}
		if old != res.Elapsed {
			t.Errorf("offset %d: Shift %v != Run %v", offset, old, res.Elapsed)
		}
	}
}

func TestCompatCrystalRouter(t *testing.T) {
	cfg := cm5.DefaultConfig()
	p := cm5.SyntheticPattern(compatN, 0.3, 512, 9)
	old, err := cm5.CrystalRouter(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cm5.Run(cm5.PatternJob(cm5.MustAlgorithm("CRYSTAL"), p, cm5.WithConfig(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	if old != res.Elapsed {
		t.Errorf("CrystalRouter %v != Run %v", old, res.Elapsed)
	}
}

func TestCompatRunCollective(t *testing.T) {
	cfg := cm5.DefaultConfig()
	for _, name := range cm5.Collectives() {
		old, err := cm5.RunCollective(name, compatN, 256, cfg)
		if err != nil {
			t.Fatalf("RunCollective(%s): %v", name, err)
		}
		res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm(name), compatN, 256, cm5.WithConfig(cfg)))
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if old != res.Elapsed {
			t.Errorf("%s: RunCollective %v != Run %v", name, old, res.Elapsed)
		}
	}
}

// The wrappers keep the old contract: family helpers reject names of
// other kinds and the auxiliary algorithms, with the one typed error.
func TestCompatWrapperErrors(t *testing.T) {
	cfg := cm5.DefaultConfig()
	cases := []struct {
		label string
		err   func() error
	}{
		{"CompleteExchange unknown", func() error {
			_, err := cm5.CompleteExchange("QEX", compatN, 1, cfg)
			return err
		}},
		{"CompleteExchange wrong kind", func() error {
			_, err := cm5.CompleteExchange("GS", compatN, 1, cfg)
			return err
		}},
		{"CompleteExchange aux", func() error {
			_, err := cm5.CompleteExchange("SHIFT", compatN, 1, cfg)
			return err
		}},
		{"Broadcast unknown", func() error {
			_, err := cm5.Broadcast("XYZ", compatN, 0, 1, cfg)
			return err
		}},
		{"ScheduleIrregular unknown", func() error {
			_, err := cm5.ScheduleIrregular("ZS", cm5.SyntheticPattern(compatN, 0.1, 1, 1))
			return err
		}},
		{"ScheduleIrregular aux", func() error {
			_, err := cm5.ScheduleIrregular("CRYSTAL", cm5.SyntheticPattern(compatN, 0.1, 1, 1))
			return err
		}},
		{"RunCollective unknown", func() error {
			_, err := cm5.RunCollective("alltoallv", compatN, 1, cfg)
			return err
		}},
	}
	for _, c := range cases {
		if err := c.err(); !errors.Is(err, cm5.ErrUnknownAlgorithm) {
			t.Errorf("%s: got %v, want ErrUnknownAlgorithm", c.label, err)
		}
	}
}
