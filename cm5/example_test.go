package cm5_test

import (
	"errors"
	"fmt"

	"repro/cm5"
)

// ExampleRun reproduces the core comparison of the paper's Figure 5:
// balanced exchange beats pairwise exchange for large messages on a
// 32-node machine.
func ExampleRun() {
	pex, _ := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 32, 2048))
	bex, _ := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("BEX"), 32, 2048))
	fmt.Println("BEX beats PEX at 2048 B:", bex.Elapsed < pex.Elapsed)
	// Output:
	// BEX beats PEX at 2048 B: true
}

// ExampleRun_pattern schedules and runs the paper's Table 6 pattern
// with the greedy algorithm; the Result carries the schedule statistics
// alongside the makespan — it completes in the 6 steps of Table 10.
func ExampleRun_pattern() {
	p := cm5.PaperPatternP(256)
	res, _ := cm5.Run(cm5.PatternJob(cm5.MustAlgorithm("GS"), p))
	fmt.Println("steps:", res.Steps)
	fmt.Println("messages:", res.Messages)
	fmt.Println("max fan-in:", res.MaxFanIn)
	fmt.Println("per-step times recorded:", len(res.StepTimes) == res.Steps)
	// Output:
	// steps: 6
	// messages: 34
	// max fan-in: 1
	// per-step times recorded: true
}

// ExamplePlan builds an explicit schedule without running it — the
// registry planners are the paper's Tables 1-4 and 7-10.
func ExamplePlan() {
	s, _ := cm5.Plan(cm5.PatternJob(cm5.MustAlgorithm("GS"), cm5.PaperPatternP(1)))
	fmt.Println("steps:", s.NumSteps())
	// Output:
	// steps: 6
}

// ExampleLookupAlgorithm resolves typed algorithm identifiers through
// the registry; a miss wraps ErrUnknownAlgorithm.
func ExampleLookupAlgorithm() {
	a, _ := cm5.LookupAlgorithm("BEX")
	fmt.Println(a.Name(), "is a", a.Kind(), "algorithm")
	_, err := cm5.LookupAlgorithm("QEX")
	fmt.Println("unknown:", errors.Is(err, cm5.ErrUnknownAlgorithm))
	// Output:
	// BEX is a exchange algorithm
	// unknown: true
}

// ExampleNewMachine programs the simulated nodes directly in the CMMD
// style: a global sum over the control network.
func ExampleNewMachine() {
	m, _ := cm5.NewMachine(8, cm5.DefaultConfig())
	var sum float64
	m.Run(func(n *cm5.Node) {
		v := n.AllReduce(float64(n.ID()), 0) // OpSum
		if n.ID() == 0 {
			sum = v
		}
	})
	fmt.Println("sum of ranks:", sum)
	// Output:
	// sum of ranks: 28
}

// ExampleRun_broadcast shows the Figure 10 crossover: the
// control-network system broadcast wins for small messages, recursive
// broadcast for large ones.
func ExampleRun_broadcast() {
	sys, reb := cm5.MustAlgorithm("SYS"), cm5.MustAlgorithm("REB")
	sysSmall, _ := cm5.Run(cm5.NewJob(sys, 32, 64))
	rebSmall, _ := cm5.Run(cm5.NewJob(reb, 32, 64))
	sysBig, _ := cm5.Run(cm5.NewJob(sys, 32, 8192))
	rebBig, _ := cm5.Run(cm5.NewJob(reb, 32, 8192))
	fmt.Println("system wins small:", sysSmall.Elapsed < rebSmall.Elapsed)
	fmt.Println("recursive wins large:", rebBig.Elapsed < sysBig.Elapsed)
	// Output:
	// system wins small: true
	// recursive wins large: true
}

// ExampleWithTopology runs the same bisection workload over two
// interconnects: the hypercube's bisection bandwidth swallows the
// cross-partition pairs that the CM-5's thinned tree serializes.
func ExampleWithTopology() {
	p, _ := cm5.WorkloadPattern("bisection", 64, 256, 0)
	cube, _ := cm5.NewTopology("hypercube", 64)
	tree, _ := cm5.Run(cm5.PatternJob(cm5.MustAlgorithm("BS"), p))
	res, _ := cm5.Run(cm5.PatternJob(cm5.MustAlgorithm("BS"), p, cm5.WithTopology(cube)))
	fmt.Println("hypercube beats the thinned fat tree:", res.Elapsed < tree.Elapsed)
	fmt.Println("per-link utilization recorded:", len(res.LinkUtilization) > 0)
	// Output:
	// hypercube beats the thinned fat tree: true
	// per-link utilization recorded: true
}

// ExampleTopologies lists the named topology families every Job can
// run over.
func ExampleTopologies() {
	for _, name := range cm5.Topologies() {
		fmt.Println(name)
	}
	// Output:
	// fat-tree
	// tapered
	// torus2d
	// torus3d
	// hypercube
	// dragonfly
}
