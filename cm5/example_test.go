package cm5_test

import (
	"fmt"

	"repro/cm5"
)

// ExampleCompleteExchange reproduces the core comparison of the paper's
// Figure 5: balanced exchange beats pairwise exchange for large messages
// on a 32-node machine.
func ExampleCompleteExchange() {
	cfg := cm5.DefaultConfig()
	pex, _ := cm5.CompleteExchange("PEX", 32, 2048, cfg)
	bex, _ := cm5.CompleteExchange("BEX", 32, 2048, cfg)
	fmt.Println("BEX beats PEX at 2048 B:", bex < pex)
	// Output:
	// BEX beats PEX at 2048 B: true
}

// ExampleScheduleIrregular schedules the paper's Table 6 pattern with
// the greedy algorithm; it completes in the 6 steps of Table 10.
func ExampleScheduleIrregular() {
	p := cm5.PaperPatternP(1)
	s, _ := cm5.ScheduleIrregular("GS", p)
	fmt.Println("steps:", s.NumSteps())
	// Output:
	// steps: 6
}

// ExampleNewMachine programs the simulated nodes directly in the CMMD
// style: a global sum over the control network.
func ExampleNewMachine() {
	m, _ := cm5.NewMachine(8, cm5.DefaultConfig())
	var sum float64
	m.Run(func(n *cm5.Node) {
		v := n.AllReduce(float64(n.ID()), 0) // OpSum
		if n.ID() == 0 {
			sum = v
		}
	})
	fmt.Println("sum of ranks:", sum)
	// Output:
	// sum of ranks: 28
}

// ExampleBroadcast shows the Figure 10 crossover: the control-network
// system broadcast wins for small messages, recursive broadcast for
// large ones.
func ExampleBroadcast() {
	cfg := cm5.DefaultConfig()
	sysSmall, _ := cm5.Broadcast("SYS", 32, 0, 64, cfg)
	rebSmall, _ := cm5.Broadcast("REB", 32, 0, 64, cfg)
	sysBig, _ := cm5.Broadcast("SYS", 32, 0, 8192, cfg)
	rebBig, _ := cm5.Broadcast("REB", 32, 0, 8192, cfg)
	fmt.Println("system wins small:", sysSmall < rebSmall)
	fmt.Println("recursive wins large:", rebBig < sysBig)
	// Output:
	// system wins small: true
	// recursive wins large: true
}
