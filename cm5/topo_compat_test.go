package cm5_test

import (
	"testing"

	"repro/cm5"
)

// fig5Pins are the simulated makespans (in nanoseconds) of every
// Figure-5 cell — all four complete-exchange algorithms at every
// message size on 32 nodes — recorded from the pre-topology-refactor
// solver (the fixed fat-tree DataNet of PR 3). The generalized
// per-link solver must reproduce them bit for bit, both on the default
// machine and through an explicit fat-tree Topology.
var fig5Pins = []struct {
	alg   string
	bytes int
	ns    int64
}{
	{"LEX", 0, 36896767},
	{"LEX", 16, 36896767},
	{"LEX", 64, 39197767},
	{"LEX", 256, 48401767},
	{"LEX", 512, 60673767},
	{"LEX", 1024, 85217767},
	{"LEX", 2048, 134305767},
	{"PEX", 0, 5456062},
	{"PEX", 16, 5456062},
	{"PEX", 64, 5679288},
	{"PEX", 256, 7102045},
	{"PEX", 512, 8815780},
	{"PEX", 1024, 11421578},
	{"PEX", 2048, 21612254},
	{"REX", 0, 890010},
	{"REX", 16, 1292410},
	{"REX", 64, 2559610},
	{"REX", 256, 7628410},
	{"REX", 512, 14386810},
	{"REX", 1024, 27903610},
	{"REX", 2048, 54937210},
	{"BEX", 0, 5456062},
	{"BEX", 16, 5456062},
	{"BEX", 64, 5642062},
	{"BEX", 256, 6657948},
	{"BEX", 512, 8055237},
	{"BEX", 1024, 10515381},
	{"BEX", 2048, 18065532},
}

// TestFatTreeCompatFig5 pins the generalized max-min solver to the
// pre-refactor results on every Figure-5 cell: the default machine and
// an explicit NewTopology("fat-tree") must both land on the recorded
// nanosecond exactly.
func TestFatTreeCompatFig5(t *testing.T) {
	ft, err := cm5.NewTopology("fat-tree", 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, pin := range fig5Pins {
		a := cm5.MustAlgorithm(pin.alg)
		def, err := cm5.Run(cm5.NewJob(a, 32, pin.bytes))
		if err != nil {
			t.Fatalf("%s/%dB default: %v", pin.alg, pin.bytes, err)
		}
		if int64(def.Elapsed) != pin.ns {
			t.Errorf("%s/%dB default machine: %d ns, pinned %d ns",
				pin.alg, pin.bytes, int64(def.Elapsed), pin.ns)
		}
		exp, err := cm5.Run(cm5.NewJob(a, 32, pin.bytes, cm5.WithTopology(ft)))
		if err != nil {
			t.Fatalf("%s/%dB fat-tree topology: %v", pin.alg, pin.bytes, err)
		}
		if int64(exp.Elapsed) != pin.ns {
			t.Errorf("%s/%dB explicit fat-tree: %d ns, pinned %d ns",
				pin.alg, pin.bytes, int64(exp.Elapsed), pin.ns)
		}
	}
}

// TestTopologyMismatchRejected ensures a topology whose node count
// differs from the job's machine size errors instead of mis-routing.
func TestTopologyMismatchRejected(t *testing.T) {
	ft, err := cm5.NewTopology("fat-tree", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 32, 256, cm5.WithTopology(ft))); err == nil {
		t.Fatal("16-node topology on a 32-node job should error")
	}
}

// TestTopologiesRunEveryFamily smoke-runs one exchange over every named
// topology and checks the per-link view is populated.
func TestTopologiesRunEveryFamily(t *testing.T) {
	for _, name := range cm5.Topologies() {
		tp, err := cm5.NewTopology(name, 16)
		if err != nil {
			t.Fatalf("NewTopology(%s): %v", name, err)
		}
		res, err := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("PEX"), 16, 256, cm5.WithTopology(tp)))
		if err != nil {
			t.Fatalf("PEX on %s: %v", name, err)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: non-positive makespan", name)
		}
		if len(res.LinkUtilization) == 0 {
			t.Errorf("%s: empty LinkUtilization", name)
		}
		if len(res.LevelUtilization) == 0 {
			t.Errorf("%s: empty LevelUtilization", name)
		}
		if cm5.TopologyDoc(name) == "" {
			t.Errorf("%s: missing doc line", name)
		}
	}
}
