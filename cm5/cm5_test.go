package cm5

import "testing"

func TestFacadeCompleteExchange(t *testing.T) {
	cfg := DefaultConfig()
	for _, alg := range ExchangeAlgorithms() {
		d, err := CompleteExchange(alg, 16, 256, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d <= 0 {
			t.Fatalf("%s: zero duration", alg)
		}
	}
}

func TestFacadeBroadcast(t *testing.T) {
	cfg := DefaultConfig()
	for _, alg := range BroadcastAlgorithms() {
		d, err := Broadcast(alg, 16, 0, 1024, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d <= 0 {
			t.Fatalf("%s: zero duration", alg)
		}
	}
}

func TestFacadeIrregular(t *testing.T) {
	cfg := DefaultConfig()
	p := SyntheticPattern(16, 0.3, 128, 7)
	for _, alg := range IrregularAlgorithms() {
		s, err := ScheduleIrregular(alg, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := s.CoversPattern(p); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		d, err := RunSchedule(s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if d <= 0 {
			t.Fatalf("%s: zero duration", alg)
		}
	}
}

func TestFacadeNodeProgramming(t *testing.T) {
	m, err := NewMachine(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	_, err = m.Run(func(n *Node) {
		v := n.AllReduce(float64(n.ID()), 0 /* OpSum */)
		if n.ID() == 0 {
			sum = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 6 {
		t.Fatalf("sum = %g", sum)
	}
}

func TestFacadePaperPattern(t *testing.T) {
	p := PaperPatternP(256)
	if p.Messages() != 34 {
		t.Fatalf("messages = %d", p.Messages())
	}
	if NewPattern(8).Messages() != 0 {
		t.Fatal("new pattern not empty")
	}
}

func TestFacadeShift(t *testing.T) {
	d, err := Shift(16, 3, 1024, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero duration")
	}
}

func TestFacadeCrystalRouter(t *testing.T) {
	p := SyntheticPattern(16, 0.3, 256, 2)
	d, err := CrystalRouter(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("zero duration")
	}
}

func TestFacadeAsyncSchedule(t *testing.T) {
	p := PaperPatternP(256)
	s, err := ScheduleIrregular("LS", p)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := RunSchedule(s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := ScheduleIrregular("LS", p)
	async, err := RunScheduleAsync(s2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if async >= sync {
		t.Fatalf("async LS (%v) should beat sync LS (%v)", async, sync)
	}
}
