package cm5_test

import (
	"fmt"

	"repro/cm5"
)

// ExampleNode_Scatter distributes one block per node from a root.
func ExampleNode_Scatter() {
	m, _ := cm5.NewMachine(4, cm5.DefaultConfig())
	got := make([]byte, 4)
	m.Run(func(n *cm5.Node) {
		var parts [][]byte
		if n.ID() == 0 {
			parts = [][]byte{{10}, {11}, {12}, {13}}
		}
		got[n.ID()] = n.Scatter(0, parts)[0]
	})
	fmt.Println("blocks:", got)
	// Output:
	// blocks: [10 11 12 13]
}

// ExampleNode_Gather collects one block from every node at a root.
func ExampleNode_Gather() {
	m, _ := cm5.NewMachine(4, cm5.DefaultConfig())
	var at2 []byte
	m.Run(func(n *cm5.Node) {
		blocks := n.Gather(2, []byte{byte(10 * n.ID())})
		if n.ID() == 2 {
			for _, b := range blocks {
				at2 = append(at2, b[0])
			}
		}
	})
	fmt.Println("gathered at 2:", at2)
	// Output:
	// gathered at 2: [0 10 20 30]
}

// ExampleNode_AllGather gives every node every block via the ring
// algorithm.
func ExampleNode_AllGather() {
	m, _ := cm5.NewMachine(4, cm5.DefaultConfig())
	rows := make([][]byte, 4)
	m.Run(func(n *cm5.Node) {
		var row []byte
		for _, b := range n.AllGather([]byte{byte(n.ID() + 1)}) {
			row = append(row, b[0])
		}
		rows[n.ID()] = row
	})
	fmt.Println("node 0:", rows[0])
	fmt.Println("node 3:", rows[3])
	// Output:
	// node 0: [1 2 3 4]
	// node 3: [1 2 3 4]
}

// ExampleNode_ReduceData folds one vector per node into the root over
// the data network's binomial tree.
func ExampleNode_ReduceData() {
	m, _ := cm5.NewMachine(8, cm5.DefaultConfig())
	var sums []float64
	m.Run(func(n *cm5.Node) {
		res := n.ReduceData(0, []float64{float64(n.ID()), 1}, cm5.OpSum)
		if n.ID() == 0 {
			sums = res
		}
	})
	fmt.Println("root holds:", sums)
	// Output:
	// root holds: [28 8]
}

// ExampleNode_AllReduceData combines vectors with the recursive-doubling
// butterfly; every node gets the bit-identical result.
func ExampleNode_AllReduceData() {
	m, _ := cm5.NewMachine(8, cm5.DefaultConfig())
	maxima := make([]float64, 8)
	m.Run(func(n *cm5.Node) {
		res := n.AllReduceData([]float64{float64(n.ID() * n.ID())}, cm5.OpMax)
		maxima[n.ID()] = res[0]
	})
	fmt.Println("every node sees max:", maxima)
	// Output:
	// every node sees max: [49 49 49 49 49 49 49 49]
}

// ExampleNode_Transpose performs the all-to-all personalized exchange:
// block j of node i ends up as block i of node j.
func ExampleNode_Transpose() {
	m, _ := cm5.NewMachine(4, cm5.DefaultConfig())
	var at1 []byte
	m.Run(func(n *cm5.Node) {
		parts := make([][]byte, 4)
		for j := range parts {
			parts[j] = []byte{byte(10*n.ID() + j)}
		}
		blocks := n.Transpose(parts)
		if n.ID() == 1 {
			for _, b := range blocks {
				at1 = append(at1, b[0])
			}
		}
	})
	fmt.Println("node 1 received:", at1)
	// Output:
	// node 1 received: [1 11 21 31]
}

// ExampleNode_CShift rotates one buffer around the ring in two parallel
// waves.
func ExampleNode_CShift() {
	m, _ := cm5.NewMachine(8, cm5.DefaultConfig())
	got := make([]byte, 8)
	m.Run(func(n *cm5.Node) {
		got[n.ID()] = n.CShift(3, []byte{byte(n.ID())})[0]
	})
	fmt.Println("after shift by 3:", got)
	// Output:
	// after shift by 3: [5 6 7 0 1 2 3 4]
}

// ExampleNode_GhostExchange swaps halo data along a 2-D stencil: each
// node learns its torus neighbors' ids.
func ExampleNode_GhostExchange() {
	halo, _ := cm5.WorkloadPattern("stencil2d", 16, 1, 0)
	m, _ := cm5.NewMachine(16, cm5.DefaultConfig())
	var neighbors []int
	m.Run(func(n *cm5.Node) {
		out := make([][]byte, 16)
		for j, b := range halo[n.ID()] {
			if b > 0 {
				out[j] = []byte{byte(n.ID())}
			}
		}
		in := n.GhostExchange(out)
		if n.ID() == 5 {
			for j, b := range in {
				if b != nil {
					neighbors = append(neighbors, j)
				}
			}
		}
	})
	fmt.Println("node 5's stencil neighbors:", neighbors)
	// Output:
	// node 5's stencil neighbors: [1 4 6 9]
}

// ExampleRun_collective times a collective as a direct CMMD node
// program through the registry — the collectives are KindCollective
// algorithms, interchangeable with their traffic-matrix form.
func ExampleRun_collective() {
	allreduce, _ := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("allreduce"), 32, 1024))
	reduce, _ := cm5.Run(cm5.NewJob(cm5.MustAlgorithm("reduce"), 32, 1024))
	fmt.Println("allreduce costs more than reduce:", allreduce.Elapsed > reduce.Elapsed)
	fmt.Println("both complete:", allreduce.Elapsed > 0 && reduce.Elapsed > 0)
	// Output:
	// allreduce costs more than reduce: true
	// both complete: true
}

// ExampleCollectivePattern schedules a collective's traffic matrix with
// the paper's greedy scheduler instead of running its node program.
func ExampleCollectivePattern() {
	p, _ := cm5.CollectivePattern("allreduce", 16, 256)
	s, _ := cm5.Plan(cm5.PatternJob(cm5.MustAlgorithm("GS"), p))
	fmt.Println("butterfly messages:", p.Messages())
	fmt.Println("greedy schedule steps:", s.NumSteps())
	// Output:
	// butterfly messages: 64
	// greedy schedule steps: 4
}

// ExampleWorkloadPattern generates a catalogue workload and reports its
// statistics.
func ExampleWorkloadPattern() {
	p, _ := cm5.WorkloadPattern("bisection", 16, 512, 0)
	st := p.Stats()
	fmt.Printf("messages=%d maxfanin=%d symmetric=%v\n", st.Messages, st.MaxFanIn, st.Symmetric)
	// Output:
	// messages=16 maxfanin=1 symmetric=true
}

// ExampleGhostExchange times the halo exchange of a 3-D stencil pattern.
func ExampleGhostExchange() {
	p, _ := cm5.WorkloadPattern("stencil3d", 64, 256, 0)
	d, _ := cm5.GhostExchange(p, cm5.DefaultConfig())
	fmt.Println("halo swap completes:", d > 0)
	// Output:
	// halo swap completes: true
}
