package cm5

import (
	"errors"

	"repro/internal/cmmd"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Trace holds per-message events (post, wire start, arrival) recorded
// when a Job ran with WithTrace; see Result.Trace.
type Trace = cmmd.Trace

// MsgEvent is one traced message's lifecycle.
type MsgEvent = cmmd.MsgEvent

// FlowInfo describes one data-network flow to an Observer.
type FlowInfo = network.FlowInfo

// Observer receives live flow events from the data network during a
// run (attach with WithObserver). Callbacks run synchronously with the
// simulation and must not block; observation never changes simulated
// timing.
type Observer = network.FlowObserver

// Job describes one run: which Algorithm (or explicit Schedule), on
// how many nodes, moving how many bytes, under which options. Build
// one with NewJob, PatternJob or ScheduleJob and pass it to Run.
type Job struct {
	alg      Algorithm
	n        int
	bytes    int
	root     int
	offset   int
	pattern  Pattern
	schedule *Schedule
	topo     Topology
	cfg      Config
	cfgSet   bool
	seed     int64
	async    bool
	trace    bool
	obs      Observer
	faults   *FaultPlan
	reg      *MetricsRegistry
	timeline *Timeline
	// optErr defers an option-construction failure (e.g. an invalid
	// trace passed to WithTraceWorkload) to Run/Plan, which cannot
	// otherwise report it: JobOption returns nothing.
	optErr error
}

// JobOption configures a Job.
type JobOption func(*Job)

// WithConfig sets the machine timing constants (default:
// DefaultConfig, the calibrated CM-5 model).
func WithConfig(cfg Config) JobOption {
	return func(j *Job) { j.cfg, j.cfgSet = cfg, true }
}

// WithSeed seeds stochastic planners — today the GSR scheduler's
// randomized tie-breaking. Deterministic algorithms ignore it.
func WithSeed(seed int64) JobOption {
	return func(j *Job) { j.seed = seed }
}

// WithAsync switches the run to buffered (non-blocking) sends — the
// what-if of the paper's Section 3.1 (real CMMD 1.x was
// synchronous-only).
func WithAsync(on bool) JobOption {
	return func(j *Job) { j.async = on }
}

// WithObserver attaches a live flow observer to the run's data network.
func WithObserver(o Observer) JobOption {
	return func(j *Job) { j.obs = o }
}

// WithFaults injects a fault plan into the run: link failures with
// reroute, degraded links, straggler nodes and background cross-traffic
// at scheduled simulation times. Build plans with NewFaultPlan (the
// named profiles) or assemble FaultEvents by hand; nil means a healthy
// machine. The plan is validated against the run's topology before
// anything executes, and Result.Faults reports what it did.
func WithFaults(p *FaultPlan) JobOption {
	return func(j *Job) { j.faults = p }
}

// WithRoot sets the broadcast root (default 0). Non-broadcast
// algorithms ignore it.
func WithRoot(root int) JobOption {
	return func(j *Job) { j.root = root }
}

// WithOffset sets the SHIFT algorithm's circular-shift offset (default
// 0, which moves nothing). Other algorithms ignore it.
func WithOffset(offset int) JobOption {
	return func(j *Job) { j.offset = offset }
}

// WithTrace records every message's lifecycle; the trace is returned
// in Result.Trace.
func WithTrace() JobOption {
	return func(j *Job) { j.trace = true }
}

// WithPattern sets the communication pattern for irregular algorithms
// (PatternJob is the usual shorthand).
func WithPattern(p Pattern) JobOption {
	return func(j *Job) { j.pattern = p }
}

// WithTopology runs the job's data network over the given topology
// instead of the default CM-5 fat tree. The topology's node count must
// match the job's machine size. Build one with NewTopology or implement
// the Topology interface directly.
func WithTopology(t Topology) JobOption {
	return func(j *Job) { j.topo = t }
}

// NewJob describes a run of alg on an n-node machine with nbytes per
// message (per processor pair for the exchanges, per block for the
// collectives, total message size for the broadcasts).
func NewJob(alg Algorithm, n, nbytes int, opts ...JobOption) Job {
	j := Job{alg: alg, n: n, bytes: nbytes}
	for _, opt := range opts {
		opt(&j)
	}
	return j
}

// PatternJob describes a run of an irregular algorithm (LS, PS, BS,
// GS, GSR, CRYSTAL) over a communication pattern; the machine size and
// message sizes come from the pattern itself.
func PatternJob(alg Algorithm, p Pattern, opts ...JobOption) Job {
	return NewJob(alg, 0, 0, append([]JobOption{WithPattern(p)}, opts...)...)
}

// ScheduleJob describes a run of an explicit, already-built Schedule
// through the generic executor, bypassing the registry's planners.
func ScheduleJob(s *Schedule, opts ...JobOption) Job {
	j := Job{schedule: s}
	for _, opt := range opts {
		opt(&j)
	}
	return j
}

// Algorithm returns the job's algorithm (zero for ScheduleJob).
func (j Job) Algorithm() Algorithm { return j.alg }

// request lowers the job onto the internal registry request.
func (j Job) request() sched.Request {
	cfg := j.cfg
	if !j.cfgSet {
		cfg = DefaultConfig()
	}
	return sched.Request{
		N: j.n, Bytes: j.bytes, Root: j.root, Offset: j.offset,
		Pattern: j.pattern, Seed: j.seed, Cfg: cfg, Topo: j.topo,
		Async: j.async, Trace: j.trace, Obs: j.obs, Faults: j.faults,
		Met: obs.Sim(j.reg), Timeline: j.timeline,
	}
}

// Result is the rich outcome of one Run: the makespan plus schedule
// statistics and network metrics.
type Result struct {
	// Algorithm identifies what ran (zero for ScheduleJob runs of
	// hand-built schedules whose name is not in the registry).
	Algorithm Algorithm

	// Elapsed is the simulated completion time of the slowest node.
	Elapsed Duration

	// Schedule statistics. For schedule-backed algorithms they describe
	// the executed schedule exactly; for program-backed ones (REX, the
	// broadcasts, CRYSTAL, the collectives) Steps is the logical step
	// count (0 when the algorithm has none) and Messages/TotalBytes
	// count the wire messages actually sent, forwarded traffic
	// included.
	Steps      int
	Messages   int
	TotalBytes int64
	// MaxFanIn is the largest number of transfers converging on one
	// node within a step — the receiver-side serialization bound under
	// synchronous sends (N-1 for LEX, 1 for the pairwise schedules).
	MaxFanIn int

	// StepTimes[i] is the virtual time the last node finished step i's
	// transfers; non-nil only for schedule-backed runs.
	StepTimes []Duration

	// LevelUtilization maps each topology level to carried bytes over
	// the level's capacity x makespan — the fraction of the level the
	// run actually used. Level 0 is the node links; for the default
	// fat tree the other levels are the tree levels.
	LevelUtilization map[int]float64

	// LinkUtilization lists every data-network link that carried
	// traffic, in topology order — the per-link view behind the
	// per-level aggregate above.
	LinkUtilization []LinkUtil

	// Data-network totals: flows started and wire bytes moved
	// (user bytes plus packetization overhead).
	Flows     int
	WireBytes int64

	// Faults reports what the job's fault plan (WithFaults) did to the
	// run: events applied, links killed and degraded, stragglers, flows
	// rerouted, background traffic injected. The zero value for a
	// fault-free run.
	Faults FaultStats

	// Trace holds per-message events when the job ran WithTrace.
	Trace *Trace

	// Timeline holds the run's sim-time spans and instants when the job
	// ran WithTimeline; nil otherwise.
	Timeline *Timeline
}

// Run executes the job on a fresh simulated machine and returns the
// rich result. Every algorithm in the registry runs through this one
// path; the deprecated facade functions are thin wrappers over it.
func Run(job Job) (Result, error) {
	if job.optErr != nil {
		return Result{}, job.optErr
	}
	var (
		met *sched.Metrics
		err error
	)
	switch {
	case job.schedule != nil:
		met, err = sched.ExecuteSchedule(job.schedule, job.request())
	case !job.alg.IsZero():
		met, err = job.alg.info.Execute(job.request())
	default:
		return Result{}, errors.New("cm5: empty job: no algorithm and no schedule")
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Algorithm:        job.alg,
		Elapsed:          met.Elapsed,
		Steps:            met.Steps,
		Messages:         met.Messages,
		TotalBytes:       met.TotalBytes,
		MaxFanIn:         met.MaxFanIn,
		StepTimes:        met.StepDone,
		LevelUtilization: met.LevelUtilization,
		LinkUtilization:  met.LinkUtilization,
		Flows:            met.Flows,
		WireBytes:        met.WireBytes,
		Faults:           met.Faults,
		Trace:            met.Trace,
		Timeline:         job.timeline,
	}
	if res.Algorithm.IsZero() && job.schedule != nil {
		if a, lerr := LookupAlgorithm(job.schedule.Algorithm); lerr == nil {
			res.Algorithm = a
		}
	}
	return res, nil
}

// Plan builds the explicit Schedule the job would execute, without
// running it. Program-backed algorithms with no static schedule (the
// broadcasts, CRYSTAL, the collectives) return an error; ScheduleJob
// jobs return their schedule unchanged.
func Plan(job Job) (*Schedule, error) {
	if job.optErr != nil {
		return nil, job.optErr
	}
	if job.schedule != nil {
		return job.schedule, nil
	}
	if job.alg.IsZero() {
		return nil, errors.New("cm5: empty job: no algorithm and no schedule")
	}
	return job.alg.info.Plan(job.request())
}

// runElapsed is the shared body of the deprecated duration-only
// wrappers.
func runElapsed(job Job) (Duration, error) {
	res, err := Run(job)
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}
